package main

import (
	"context"
	"expvar"
	"net/http"
	"sync"
	"time"

	"secureblox/internal/dist"
	"secureblox/internal/metrics"
	"secureblox/internal/obs"
	"secureblox/internal/seccrypto"
)

// debugState is what the expvar endpoint snapshots. The server starts
// before the node exists (bootstrap is observable too), so reads
// nil-guard; bindDebug swaps the live node in once assembled.
var debugState struct {
	mu        sync.Mutex
	cluster   string
	principal string
	node      *dist.Node
	pools     *cryptoPools
}

// bindDebug points the debug vars at the live node.
func bindDebug(clusterName, principal string, node *dist.Node, pools *cryptoPools) {
	debugState.mu.Lock()
	defer debugState.mu.Unlock()
	debugState.cluster = clusterName
	debugState.principal = principal
	debugState.node = node
	debugState.pools = pools
}

// publishOnce registers an expvar under name unless a previous server in
// this process already did (expvar panics on duplicates).
func publishOnce(name string, v expvar.Var) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, v)
	}
}

// startDebugServer serves the process's observability surface over HTTP:
// /metrics (the unified obs registry in Prometheus text format),
// /debug/spans (the wave-trace span ring, for cross-node causal-tree
// reconstruction), and /debug/vars with the original expvar snapshots —
// the engine's process-wide EngineStats, the dist runtime's ship/receive
// counters and dedup-set size, and the RSA sign/verify work. It returns
// the bound address and a stop function.
func startDebugServer(addr string) (string, func(), error) {
	publishOnce("sbx_engine", expvar.Func(func() any {
		s := metrics.EngineTotals()
		return map[string]int64{
			"index_probes":        s.IndexProbes,
			"leading_scans":       s.LeadingScans,
			"full_scan_fallbacks": s.FullScanFallbacks,
			"fixpoint_rounds":     s.FixpointRounds,
		}
	}))
	publishOnce("sbx_dist", expvar.Func(func() any {
		debugState.mu.Lock()
		defer debugState.mu.Unlock()
		out := map[string]any{
			"cluster":   debugState.cluster,
			"principal": debugState.principal,
		}
		if n := debugState.node; n != nil {
			sent, recv := n.Counters()
			tr := n.Metrics.Traffic()
			out["msgs_shipped"] = sent
			out["msgs_processed"] = recv
			out["bytes_sent"] = tr.BytesSent
			out["bytes_recv"] = tr.BytesRecv
			out["sent_set_size"] = n.SentSetSize()
			out["violations"] = n.Metrics.Violations()
		}
		return out
	}))
	publishOnce("sbx_crypto", expvar.Func(func() any {
		out := map[string]int64{
			"rsa_sign_ops":   seccrypto.SignOps(),
			"rsa_verify_ops": seccrypto.VerifyOps(),
		}
		debugState.mu.Lock()
		defer debugState.mu.Unlock()
		if p := debugState.pools; p != nil && p.sign != nil {
			hits, misses := p.sign.Stats()
			out["sign_pool_hits"] = hits
			out["sign_pool_misses"] = misses
		}
		if p := debugState.pools; p != nil && p.verify != nil {
			hits, misses := p.verify.Stats()
			out["verify_pool_hits"] = hits
			out["verify_pool_misses"] = misses
		}
		return out
	}))

	// A dedicated mux rather than http.DefaultServeMux: obs.Mount
	// registers fixed routes, and a second server in the same process
	// (tests, allinone) must not panic on duplicate patterns.
	mux := http.NewServeMux()
	obs.Mount(mux)
	ds, err := obs.StartDebugServer(addr, mux)
	if err != nil {
		return "", nil, err
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = ds.Close(ctx)
	}
	return ds.Addr(), stop, nil
}
