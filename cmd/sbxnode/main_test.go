package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"secureblox/internal/cluster"
	"secureblox/internal/seccrypto"
)

// writeTestConfig builds a runnable config in dir: concrete seed port on
// loopback, ephemeral ports for the joiners, inline keys under RSA.
func writeTestConfig(t *testing.T, dir, policy, workload string, seedPort int) string {
	t.Helper()
	cfg := cluster.Config{
		Cluster:  "sbxtest-" + policy + "-" + workload,
		Policy:   policy,
		Workload: cluster.WorkloadConfig{Name: workload, Seed: 11, Degree: 3, SizeA: 60, SizeB: 50, JoinValues: 12},
		Nodes: []cluster.NodeConfig{
			{Principal: "p0", Addr: fmt.Sprintf("127.0.0.1:%d", seedPort)},
			{Principal: "p1", Addr: "127.0.0.1:0"},
			{Principal: "p2", Addr: "127.0.0.1:0"},
		},
	}
	spec, err := cluster.ParsePolicyName(policy)
	if err != nil {
		t.Fatal(err)
	}
	if spec.UsesRSA() {
		for i := range cfg.Nodes {
			k, err := seccrypto.GenerateRSAKey(seccrypto.NewDeterministicRand(int64(100 + i)))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Nodes[i].KeyPEM = string(seccrypto.EncodePrivateKeyPEM(k))
		}
	}
	if spec.UsesSharedSecrets() {
		cfg.ClusterSecret = strings.Repeat("5a", seccrypto.SecretLen)
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cluster.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs run() with stdout/stderr redirected to temp files and
// returns the exit code and both streams.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	outB, _ := os.ReadFile(outF.Name())
	errB, _ := os.ReadFile(errF.Name())
	outF.Close()
	errF.Close()
	return code, string(outB), string(errB)
}

// sortedLines splits, sorts and rejoins result output so per-process
// partitions can be merged the way the CI smoke merges them.
func sortedLines(chunks ...string) string {
	var all []string
	for _, c := range chunks {
		for _, l := range strings.Split(strings.TrimSpace(c), "\n") {
			if l != "" {
				all = append(all, l)
			}
		}
	}
	s := append([]string(nil), all...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return strings.Join(s, "\n")
}

// TestMultiProcessMatchesAllInOne drives three full node runtimes — each
// with its own strict UDP network, keystore and detector, exactly the
// multi-process code path — concurrently against the in-process memnet
// reference, and requires byte-identical result sets. CI repeats this with
// three real OS processes; this test keeps the property under `go test`.
func TestMultiProcessMatchesAllInOne(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up real UDP sockets")
	}
	for _, tc := range []struct{ policy, workload, port string }{
		{"RSA", "pathvector", "7411"},
		{"HMAC-AES", "pathvector", "7412"},
		{"NoAuth", "hashjoin", "7413"},
	} {
		t.Run(tc.policy+"/"+tc.workload, func(t *testing.T) {
			dir := t.TempDir()
			var port int
			fmt.Sscanf(tc.port, "%d", &port)
			cfgPath := writeTestConfig(t, dir, tc.policy, tc.workload, port)

			refCode, refOut, refErr := capture(t, []string{"-config", cfgPath, "-allinone", "-timeout", "60s"})
			if refCode != 0 {
				t.Fatalf("allinone exit %d: %s", refCode, refErr)
			}

			outs := make([]string, 3)
			var wg sync.WaitGroup
			for i, p := range []string{"p0", "p1", "p2"} {
				i, p := i, p
				wg.Add(1)
				go func() {
					defer wg.Done()
					code, out, errOut := capture(t, []string{"-config", cfgPath, "-node", p, "-timeout", "60s"})
					if code != 0 {
						t.Errorf("%s exit %d: %s", p, code, errOut)
						return
					}
					outs[i] = out
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			got := sortedLines(outs...)
			want := sortedLines(refOut)
			if got != want {
				t.Fatalf("multi-node results differ from allinone reference:\n--- multi:\n%s\n--- allinone:\n%s", got, want)
			}
			if want == "" {
				t.Fatal("empty result set proves nothing")
			}
		})
	}
}

// TestDeadPeerYieldsTypedError: one node passes the ready barrier and
// vanishes; the survivors must exit with code 3 (the typed unresponsive
// detector error) naming the dead principal — not hang.
func TestDeadPeerYieldsTypedError(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up real UDP sockets")
	}
	dir := t.TempDir()
	cfgPath := writeTestConfig(t, dir, "NoAuth", "pathvector", 7421)
	codes := make([]int, 3)
	errs := make([]string, 3)
	var wg sync.WaitGroup
	for i, p := range []string{"p0", "p1", "p2"} {
		i, p := i, p
		args := []string{"-config", cfgPath, "-node", p, "-timeout", "30s", "-unresponsive", "2s"}
		if p == "p2" {
			args = append(args, "-dieafterjoin")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], _, errs[i] = capture(t, args)
		}()
	}
	wg.Wait()
	if codes[2] != 0 {
		t.Fatalf("fault-injected node exited %d: %s", codes[2], errs[2])
	}
	for i := 0; i < 2; i++ {
		if codes[i] != 3 {
			t.Fatalf("survivor p%d exited %d (want 3): %s", i, codes[i], errs[i])
		}
		if !strings.Contains(errs[i], "p2") || !strings.Contains(errs[i], "no termination report") {
			t.Fatalf("survivor p%d error does not name the dead principal: %s", i, errs[i])
		}
	}
}

// TestCLIErrors covers the config-driven failure paths end to end.
func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	cfgPath := writeTestConfig(t, dir, "NoAuth", "pathvector", 7431)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no config", []string{"-node", "p0"}, "-config is required"},
		{"absent config", []string{"-config", filepath.Join(dir, "nope.json"), "-node", "p0"}, "no such file"},
		{"no mode", []string{"-config", cfgPath}, "one of -node, -allinone, -genkeys or -vet"},
		{"unknown principal", []string{"-config", cfgPath, "-node", "px"}, `no node named "px"`},
		{"genkeys without rsa", []string{"-config", cfgPath, "-genkeys"}, "uses no RSA keys"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := capture(t, tc.args)
			if code != 1 || !strings.Contains(errOut, tc.want) {
				t.Fatalf("exit %d, stderr %q; want exit 1 containing %q", code, errOut, tc.want)
			}
		})
	}
}

// TestVetPreflight: -vet analyzes both shipped workloads under their
// configured policy without touching key files, and reports success.
func TestVetPreflight(t *testing.T) {
	dir := t.TempDir()
	for _, workload := range []string{"pathvector", "hashjoin"} {
		cfgPath := writeTestConfig(t, dir, "RSA", workload, 7451)
		code, out, errOut := capture(t, []string{"-config", cfgPath, "-vet"})
		if code != 0 {
			t.Fatalf("%s: vet exit %d: %s", workload, code, errOut)
		}
		if !strings.Contains(out, "vet: workload "+workload+" (RSA): ok") {
			t.Fatalf("%s: vet output missing verdict:\n%s", workload, out)
		}
	}
}

// TestGenKeysProvisionsConfig: -genkeys writes loadable key files exactly
// where the config points.
func TestGenKeysProvisionsConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := cluster.Config{
		Cluster:  "genkeys",
		Policy:   "RSA",
		Workload: cluster.WorkloadConfig{Name: "pathvector", Seed: 1},
		Nodes: []cluster.NodeConfig{
			{Principal: "p0", Addr: "127.0.0.1:7441", KeyFile: filepath.Join(dir, "p0.pem")},
			{Principal: "p1", Addr: "127.0.0.1:0", KeyFile: filepath.Join(dir, "p1.pem")},
		},
	}
	data, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "c.json")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := capture(t, []string{"-config", cfgPath, "-genkeys"})
	if code != 0 {
		t.Fatalf("genkeys exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "p0.pem") || !strings.Contains(out, "p1.pem") {
		t.Fatalf("genkeys output: %s", out)
	}
	loaded, err := cluster.LoadConfig(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"p0", "p1"} {
		if _, err := loaded.LoadNodeKey(p); err != nil {
			t.Fatalf("generated key for %s unusable: %v", p, err)
		}
	}
}
