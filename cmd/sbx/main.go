// Command sbx is the SecureBlox compiler/runner CLI: it compiles a
// DatalogLB query together with BloxGenerics policy files, installs the
// result into a local workspace, and dumps the derived database. With
// -emit it prints the generated concrete program instead of running it.
//
// Usage:
//
//	sbx [-p policy.blox]... [-emit] [-dump pred1,pred2] query.dlb
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"secureblox/internal/engine"
	"secureblox/internal/generics"
	"secureblox/internal/seccrypto"
	"secureblox/internal/udf"
)

type policyList []string

func (p *policyList) String() string     { return strings.Join(*p, ",") }
func (p *policyList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	log.SetFlags(0)
	var policies policyList
	flag.Var(&policies, "p", "BloxGenerics policy file (repeatable)")
	emit := flag.Bool("emit", false, "print the compiled concrete program and exit")
	dump := flag.String("dump", "", "comma-separated predicates to print (default: all non-empty)")
	self := flag.String("self", "local", "local principal name")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sbx [-p policy.blox]... [-emit] [-dump preds] query.dlb")
		os.Exit(2)
	}
	querySrc, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	gc := generics.NewCompiler()
	for _, pf := range policies {
		src, err := os.ReadFile(pf)
		if err != nil {
			log.Fatal(err)
		}
		if err := gc.AddPolicy(string(src)); err != nil {
			log.Fatalf("%s: %v", pf, err)
		}
	}
	res, err := gc.Compile(string(querySrc))
	if err != nil {
		log.Fatal(err)
	}
	if *emit {
		fmt.Print(res.Program.String())
		return
	}

	ks := seccrypto.NewKeyStore(*self)
	key, err := seccrypto.GenerateRSAKey(seccrypto.NewDeterministicRand(1))
	if err != nil {
		log.Fatal(err)
	}
	ks.SetPrivateKey(key)
	ks.AddPublicKey(*self, &key.PublicKey)
	reg, err := udf.NewRegistry(ks, seccrypto.NewDeterministicRand(2))
	if err != nil {
		log.Fatal(err)
	}
	ws := engine.NewWorkspace(reg)
	if err := ws.Install(res.Program); err != nil {
		log.Fatal(err)
	}
	for _, diag := range ws.Unstratified {
		fmt.Fprintln(os.Stderr, "warning:", diag)
	}

	var preds []string
	if *dump != "" {
		preds = strings.Split(*dump, ",")
	} else {
		for _, p := range ws.Predicates() {
			if ws.Count(p) > 0 {
				preds = append(preds, p)
			}
		}
	}
	sort.Strings(preds)
	for _, p := range preds {
		tuples := ws.Tuples(p)
		sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key() < tuples[j].Key() })
		for _, t := range tuples {
			fmt.Printf("%s%s.\n", p, t)
		}
	}
}
