// Command sbx is the SecureBlox compiler/runner CLI: it compiles a
// DatalogLB query together with BloxGenerics policy files, installs the
// result into a local workspace, and dumps the derived database. With
// -emit it prints the generated concrete program instead of running it.
//
// The vet subcommand runs the static analyzer (internal/analysis) instead
// of the engine: it prints safety, stratification, dead-rule, and
// co-partitioning findings with source positions and exits nonzero when any
// error-class finding is reported.
//
// The top and trace subcommands are the cluster collector: top scrapes
// /metrics and /healthz from every node of a running deployment and renders
// a live per-node table; trace fetches /debug/spans from every node (or
// reads -spandump files) and prints a derivation wave's causal tree.
//
// Usage:
//
//	sbx [-p policy.blox]... [-emit] [-dump pred1,pred2] query.dlb
//	sbx vet [-p policy.blox]... query.dlb...
//	sbx vet -builtin
//	sbx top [-once] [-interval 2s] [-config cluster.json | addr...]
//	sbx trace [-config cluster.json | -addrs a,b | -dump file...] [-list | <trace-id>]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"secureblox/internal/analysis"
	"secureblox/internal/apps"
	"secureblox/internal/core"
	"secureblox/internal/datalog"
	"secureblox/internal/engine"
	"secureblox/internal/generics"
	"secureblox/internal/seccrypto"
	"secureblox/internal/udf"
)

type policyList []string

func (p *policyList) String() string     { return strings.Join(*p, ",") }
func (p *policyList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	log.SetFlags(0)
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "vet":
			os.Exit(runVet(os.Args[2:]))
		case "top":
			os.Exit(runTop(os.Args[2:]))
		case "trace":
			os.Exit(runTrace(os.Args[2:]))
		}
	}
	runQuery(os.Args[1:])
}

// compileFile compiles one query file together with the given policy files.
func compileFile(policies []string, queryFile string) (*generics.Result, error) {
	querySrc, err := os.ReadFile(queryFile)
	if err != nil {
		return nil, err
	}
	gc := generics.NewCompiler()
	for _, pf := range policies {
		src, err := os.ReadFile(pf)
		if err != nil {
			return nil, err
		}
		if err := gc.AddPolicy(string(src)); err != nil {
			return nil, fmt.Errorf("%s: %w", pf, err)
		}
	}
	return gc.Compile(string(querySrc))
}

// runQuery is the classic compile-install-dump mode.
func runQuery(args []string) {
	fs := flag.NewFlagSet("sbx", flag.ExitOnError)
	var policies policyList
	fs.Var(&policies, "p", "BloxGenerics policy file (repeatable)")
	emit := fs.Bool("emit", false, "print the compiled concrete program and exit")
	dump := fs.String("dump", "", "comma-separated predicates to print (default: all non-empty)")
	self := fs.String("self", "local", "local principal name")
	fs.Parse(args)

	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sbx [-p policy.blox]... [-emit] [-dump preds] query.dlb")
		os.Exit(2)
	}
	res, err := compileFile(policies, fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if *emit {
		fmt.Print(res.Program.String())
		return
	}

	ks := seccrypto.NewKeyStore(*self)
	key, err := seccrypto.GenerateRSAKey(seccrypto.NewDeterministicRand(1))
	if err != nil {
		log.Fatal(err)
	}
	ks.SetPrivateKey(key)
	ks.AddPublicKey(*self, &key.PublicKey)
	reg, err := udf.NewRegistry(ks, seccrypto.NewDeterministicRand(2))
	if err != nil {
		log.Fatal(err)
	}
	ws := engine.NewWorkspace(reg)
	if err := ws.Install(res.Program); err != nil {
		log.Fatal(err)
	}
	for _, diag := range ws.Unstratified {
		fmt.Fprintln(os.Stderr, "warning:", diag)
	}

	var preds []string
	if *dump != "" {
		preds = strings.Split(*dump, ",")
	} else {
		for _, p := range ws.Predicates() {
			if ws.Count(p) > 0 {
				preds = append(preds, p)
			}
		}
	}
	sort.Strings(preds)
	for _, p := range preds {
		tuples := ws.Tuples(p)
		sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key() < tuples[j].Key() })
		for _, t := range tuples {
			fmt.Printf("%s%s.\n", p, t)
		}
	}
}

// vetTarget is one program to analyze: a query file compiled with the -p
// policies, or a shipped rule set compiled the way its deployment compiles
// it.
type vetTarget struct {
	name string
	prog *datalog.Program
}

// builtinTargets compiles every shipped rule set under its deployment's
// policy pipeline — the programs CI vets on every change.
func builtinTargets() ([]vetTarget, error) {
	pol := core.PolicyConfig{Delegation: core.DelegateNone}
	var out []vetTarget
	for _, b := range []struct {
		name  string
		query string
		extra []string
	}{
		{"pathvector", apps.PathVectorQuery, nil},
		{"hashjoin", apps.HashJoinQuery, nil},
		{"anonjoin", apps.AnonJoinQuery, []string{apps.AnonPolicy}},
	} {
		res, err := core.CompileProgram(pol, b.query, b.extra)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", b.name, err)
		}
		out = append(out, vetTarget{b.name, res.Program})
	}
	return out, nil
}

// runVet implements `sbx vet`: run the static analyzer over each target,
// print findings with source positions, and exit nonzero when any target
// has error-class findings.
func runVet(args []string) int {
	fs := flag.NewFlagSet("sbx vet", flag.ExitOnError)
	var policies policyList
	fs.Var(&policies, "p", "BloxGenerics policy file (repeatable)")
	builtin := fs.Bool("builtin", false, "vet the shipped rule sets (pathvector, hashjoin, anonjoin) instead of files")
	quiet := fs.Bool("q", false, "suppress info-level findings")
	fs.Parse(args)

	var targets []vetTarget
	if *builtin {
		var err error
		targets, err = builtinTargets()
		if err != nil {
			log.Print(err)
			return 1
		}
	} else {
		if fs.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: sbx vet [-p policy.blox]... query.dlb... | sbx vet -builtin")
			return 2
		}
		for _, qf := range fs.Args() {
			res, err := compileFile(policies, qf)
			if err != nil {
				log.Print(err)
				return 1
			}
			targets = append(targets, vetTarget{qf, res.Program})
		}
	}

	// Planning never evaluates a UDF, so an empty keystore provides the full
	// library's names and binding shapes without any key material.
	reg, err := udf.NewRegistry(seccrypto.NewKeyStore("vet"), nil)
	if err != nil {
		log.Print(err)
		return 1
	}
	a := &analysis.Analyzer{UDFs: reg}

	exit := 0
	for _, t := range targets {
		rep, err := a.Analyze(t.prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t.name, err)
			exit = 1
			continue
		}
		findings := rep.Findings
		if *quiet {
			kept := findings[:0:0]
			for _, f := range findings {
				if f.Severity != analysis.Info {
					kept = append(kept, f)
				}
			}
			findings = kept
		}
		if analysis.WriteFindings(os.Stdout, t.name, findings) > 0 {
			exit = 1
		}
	}
	return exit
}
