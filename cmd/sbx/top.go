package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"secureblox/internal/cluster"
	"secureblox/internal/obs"
)

// runTop implements `sbx top`: scrape /metrics and /healthz from every
// node of a running deployment and render one table row per node — txn
// counts and rate, traffic, outbound queue depth, retransmit/backoff
// activity, eviction count and fixpoint-round progress. Addresses come
// from the cluster config's debug_addr entries (-config) or are listed
// explicitly. -once prints a single table and exits (nonzero if any node
// failed to answer), the default refreshes every -interval.
func runTop(args []string) int {
	fs := flag.NewFlagSet("sbx top", flag.ExitOnError)
	once := fs.Bool("once", false, "print one table and exit (nonzero when any node fails to answer)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	configPath := fs.String("config", "", "cluster config (JSON); scrapes its nodes' debug_addr entries")
	timeout := fs.Duration("timeout", 3*time.Second, "per-node scrape timeout")
	fs.Parse(args)

	addrs, err := collectorAddrs(*configPath, "", fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbx top: %v\n", err)
		return 1
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sbx top [-once] [-interval 2s] [-config cluster.json | addr...]")
		return 2
	}

	client := &http.Client{Timeout: *timeout}
	var prev map[string]obs.NodeScrape
	for {
		scrapes := scrapeAll(client, addrs)
		failed := renderTop(os.Stdout, scrapes, prev)
		if *once {
			if failed > 0 {
				return 1
			}
			return 0
		}
		prev = make(map[string]obs.NodeScrape, len(scrapes))
		for _, s := range scrapes {
			prev[s.Addr] = s
		}
		time.Sleep(*interval)
	}
}

// collectorAddrs merges the collector's address sources: a cluster
// config's debug_addr entries, a comma-separated -addrs value (split by
// the caller) and explicit positional addresses, deduplicated in order.
func collectorAddrs(configPath string, _ string, explicit []string) ([]string, error) {
	var addrs []string
	if configPath != "" {
		cfg, err := cluster.LoadConfig(configPath)
		if err != nil {
			return nil, err
		}
		addrs = append(addrs, cfg.DebugAddrs()...)
		if len(addrs) == 0 {
			return nil, fmt.Errorf("%s: no node declares a debug_addr", configPath)
		}
	}
	addrs = append(addrs, explicit...)
	seen := make(map[string]bool, len(addrs))
	out := addrs[:0]
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out, nil
}

// scrapeAll fetches every node concurrently; order follows addrs.
func scrapeAll(client *http.Client, addrs []string) []obs.NodeScrape {
	out := make([]obs.NodeScrape, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i] = obs.ScrapeNode(client, addr)
		}(i, addr)
	}
	wg.Wait()
	return out
}

// renderTop prints the per-node table, returning how many nodes failed to
// answer. prev (the previous refresh, nil on the first) turns counter
// deltas into rates.
func renderTop(w *os.File, scrapes []obs.NodeScrape, prev map[string]obs.NodeScrape) int {
	rows := append([]obs.NodeScrape(nil), scrapes...)
	sort.SliceStable(rows, func(i, j int) bool {
		pi, pj := rows[i].Principal, rows[j].Principal
		if pi != pj {
			return pi < pj
		}
		return rows[i].Addr < rows[j].Addr
	})
	fmt.Fprintf(w, "sbx top — %s — %d node(s)\n", time.Now().Format("15:04:05"), len(rows))
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "PRINCIPAL\tADDR\tSTATE\tTXNS\tTXN/S\tSENT\tRECV\tQUEUE\tRETX\tBACKOFF\tEVICT\tROUNDS\tGOROUT")
	failed := 0
	for _, s := range rows {
		name := s.Principal
		if name == "" {
			name = "?"
		}
		if s.Err != nil {
			failed++
			fmt.Fprintf(tw, "%s\t%s\tunreachable\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\n", name, s.Addr)
			continue
		}
		state := s.State
		if state == "" {
			state = "-"
		}
		rate := "-"
		if p, ok := prev[s.Addr]; ok && p.Err == nil {
			if dt := s.At.Sub(p.At).Seconds(); dt > 0 {
				rate = fmt.Sprintf("%.1f", (s.Counter("sbx_txns_total")-p.Counter("sbx_txns_total"))/dt)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f\t%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			name, s.Addr, state,
			s.Counter("sbx_txns_total"), rate,
			s.Counter("sbx_msgs_sent_total"), s.Counter("sbx_msgs_recv_total"),
			s.Counter("sbx_outbound_pending_chunks"),
			s.Counter("sbx_transport_retransmits_total"), s.Counter("sbx_transport_backoffs_total"),
			s.Counter("sbx_cluster_evictions_total"), s.Counter("sbx_engine_fixpoint_rounds_total"),
			s.Counter("sbx_go_goroutines"))
	}
	tw.Flush()
	return failed
}
