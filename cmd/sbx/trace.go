package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"secureblox/internal/obs"
)

// runTrace implements `sbx trace`: merge the span rings of every node of a
// deployment — fetched live from /debug/spans (-config/-addrs) or read
// from `sbxnode -spandump` artifacts (-dump) — and render one derivation
// wave's causal tree with per-stage latencies. With -list (or no trace ID)
// it prints a summary of every trace seen instead, deepest waves first.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("sbx trace", flag.ExitOnError)
	configPath := fs.String("config", "", "cluster config (JSON); fetches spans from its nodes' debug_addr entries")
	addrsFlag := fs.String("addrs", "", "comma-separated debug addresses to fetch /debug/spans from")
	var dumps policyList
	fs.Var(&dumps, "dump", "span dump file written by sbxnode -spandump (repeatable)")
	list := fs.Bool("list", false, "list every trace in the merged spans instead of rendering one")
	timeout := fs.Duration("timeout", 3*time.Second, "per-node fetch timeout")
	fs.Parse(args)

	var explicit []string
	for _, a := range strings.Split(*addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			explicit = append(explicit, a)
		}
	}
	addrs, err := collectorAddrs(*configPath, "", explicit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbx trace: %v\n", err)
		return 1
	}
	if len(addrs) == 0 && len(dumps) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sbx trace [-config cluster.json | -addrs a,b | -dump file...] [-list | <trace-id>]")
		return 2
	}

	// The trace ID is parsed before any fetching so a typo fails fast.
	var id uint64
	if !*list && fs.NArg() > 0 {
		id, err = strconv.ParseUint(fs.Arg(0), 10, 64)
		if err != nil || id == 0 {
			fmt.Fprintf(os.Stderr, "sbx trace: bad trace id %q\n", fs.Arg(0))
			return 2
		}
	}

	client := &http.Client{Timeout: *timeout}
	var all []obs.Span
	for _, addr := range addrs {
		spans, err := obs.FetchSpans(client, addr, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbx trace: %s: %v\n", addr, err)
			return 1
		}
		all = append(all, spans...)
	}
	for _, path := range dumps {
		spans, err := obs.ReadSpanDump(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbx trace: %v\n", err)
			return 1
		}
		all = append(all, spans...)
	}

	if *list || id == 0 {
		sums := obs.SummarizeTraces(all)
		if len(sums) == 0 {
			fmt.Fprintln(os.Stderr, "sbx trace: no spans found")
			return 1
		}
		fmt.Println("TRACE\tSPANS\tNODES\tDEPTH\tSTART")
		for _, s := range sums {
			fmt.Printf("%d\t%d\t%d\t%d\t%s\n", s.Trace, s.Spans, s.Nodes, s.Depth,
				s.Start.Format("15:04:05.000"))
		}
		return 0
	}

	root := obs.BuildWave(id, all)
	if root == nil {
		fmt.Fprintf(os.Stderr, "sbx trace: no spans for trace %d\n", id)
		return 1
	}
	fmt.Printf("trace %d: %d spans across %d node(s), depth %d\n",
		id, root.SpanCount(), len(root.Participants()), root.Depth())
	obs.WriteWaveASCII(os.Stdout, root)
	return 0
}
