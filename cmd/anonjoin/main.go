// Command anonjoin runs the paper's §7.3 anonymous join over onion
// circuits of varying length, reporting correctness and the latency cost
// of each additional relay hop.
//
// Usage:
//
//	anonjoin -relays 1,2,3 -interests 20 -rows 200
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"secureblox/internal/apps"
)

func main() {
	relaysFlag := flag.String("relays", "1,2,3", "comma-separated circuit lengths to test")
	interests := flag.Int("interests", 20, "local interests table size")
	rows := flag.Int("rows", 200, "remote publicdata table size")
	overlap := flag.Int("overlap", 12, "interests with matches")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Println("relays\tresults\texpected\tfixpoint")
	for _, part := range strings.Split(*relaysFlag, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad -relays: %v", err)
		}
		res, err := apps.RunAnonJoin(apps.AnonJoinConfig{
			Relays: r, Interests: *interests, PublicRows: *rows,
			Overlap: *overlap, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("relays=%d: %v", r, err)
		}
		fmt.Printf("%d\t%d\t%d\t%v\n", r, res.Results, res.Expected, res.Duration)
		if res.Results != res.Expected {
			log.Fatalf("relays=%d: wrong result", r)
		}
		res.Cluster.Stop()
	}
	fmt.Println("\neach relay adds one encryption layer and one forwarding hop;")
	fmt.Println("the endpoint sees only the circuit handle, never the initiator.")
}
