// Command benchjson runs the paper's two headline workloads (Figure 4's
// path-vector sweep and Figure 7/10/11's hash join) and writes one
// machine-readable BENCH_*.json report per figure, with every measurement
// pulled from the unified obs registry: fixpoint seconds, RSA sign
// operations, bytes shipped, and per-transaction latency quantiles from
// the sbx_txn_duration_seconds histogram delta. A third report,
// BENCH_engine_parallel.json, sweeps the single-node stratified parallel
// evaluator across worker counts on the BenchmarkEngineFixpoint workloads.
// The JSON files are checked into the repo so the performance trajectory
// across PRs is recorded as data instead of prose.
//
// Usage:
//
//	benchjson -quick -out .
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"time"

	"secureblox/internal/apps"
	"secureblox/internal/core"
	"secureblox/internal/datalog"
	"secureblox/internal/engine"
	"secureblox/internal/metrics"
	"secureblox/internal/obs"
)

// registrySnap is the registry state a run is measured against: quantities
// accumulate process-wide, so each run reports the delta from its start.
type registrySnap struct {
	txnHist     obs.HistSnapshot
	signOps     int64
	bytes       int64
	txns        int64
	rounds      int64
	retransmits int64
	backoffs    int64
	evictions   int64
	chaosFaults int64
}

func snapshot() registrySnap {
	r := obs.Default()
	return registrySnap{
		txnHist:     r.HistogramSnapshot("sbx_txn_duration_seconds"),
		signOps:     r.CounterValue("sbx_rsa_sign_ops_total"),
		bytes:       r.CounterValue("sbx_bytes_sent_total"),
		txns:        r.CounterValue("sbx_txns_total"),
		rounds:      r.CounterValue("sbx_engine_fixpoint_rounds_total"),
		retransmits: r.CounterValue("sbx_transport_retransmits_total"),
		backoffs:    r.CounterValue("sbx_transport_backoffs_total"),
		evictions:   r.CounterValue("sbx_cluster_evictions_total"),
		chaosFaults: r.CounterValue("sbx_chaos_faults_total"),
	}
}

// delta fills one result's registry-sourced fields from the difference
// between the current registry state and the pre-run snapshot.
func (before registrySnap) delta(res *obs.BenchSchemeResult) {
	after := snapshot()
	hist := after.txnHist.Sub(before.txnHist)
	res.RSASignOps = after.signOps - before.signOps
	res.BytesShipped = after.bytes - before.bytes
	res.Txns = after.txns - before.txns
	res.TxnP50Ms = hist.Quantile(0.5) * 1000
	res.TxnP90Ms = hist.Quantile(0.9) * 1000
	res.TxnP99Ms = hist.Quantile(0.99) * 1000
	res.FixpointRounds = after.rounds - before.rounds
	res.Retransmits = after.retransmits - before.retransmits
	res.Backoffs = after.backoffs - before.backoffs
	res.Evictions = after.evictions - before.evictions
	res.ChaosFaults = after.chaosFaults - before.chaosFaults
}

func main() {
	quick := flag.Bool("quick", false, "scaled-down sizes for CI (the checked-in reports use this)")
	outDir := flag.String("out", ".", "directory to write BENCH_*.json files into")
	transportFlag := flag.String("transport", "mem", "cluster transport: mem or udp")
	seed := flag.Int64("seed", 1, "workload random seed")
	flag.Parse()

	pvSizes := []int{6, 12, 18, 24, 30, 36}
	hjSizes := []int{6, 12, 18}
	if *quick {
		pvSizes = []int{6, 12, 18, 24}
		hjSizes = []int{6}
	}
	now := time.Now().UTC().Format(time.RFC3339)

	// Figure 4: path-vector fixpoint latency across schemes and sizes.
	pvSchemes := []core.PolicyConfig{
		{Auth: core.AuthNone},
		{Auth: core.AuthHMAC},
		{Auth: core.AuthRSA},
		{Auth: core.AuthRSA, BatchSign: true},
	}
	fig4 := obs.BenchReport{
		Figure: "fig4_pathvector", Workload: "pathvector",
		Transport: *transportFlag, Quick: *quick, GeneratedAt: now,
	}
	for _, p := range pvSchemes {
		for _, n := range pvSizes {
			metrics.EngineReset()
			before := snapshot()
			res, err := apps.RunPathVector(apps.PathVectorConfig{
				N: n, AvgDegree: 3, Policy: p,
				Seed: *seed + int64(n), Transport: *transportFlag,
			})
			if err != nil {
				log.Fatalf("pathvector n=%d %s: %v", n, p.Name(), err)
			}
			if res.Violations != 0 {
				log.Fatalf("pathvector n=%d %s: %d violations", n, p.Name(), res.Violations)
			}
			out := obs.BenchSchemeResult{
				Scheme: p.Name(), N: n,
				FixpointSeconds: res.FixpointLatency.Seconds(),
			}
			before.delta(&out)
			res.Cluster.Stop()
			fig4.Results = append(fig4.Results, out)
			fmt.Printf("# pathvector %s n=%d: %.3fs %d signs %d txns\n",
				p.Name(), n, out.FixpointSeconds, out.RSASignOps, out.Txns)
		}
	}
	fig4Path := filepath.Join(*outDir, "BENCH_fig4_pathvector.json")
	if err := obs.WriteBenchJSON(fig4Path, fig4); err != nil {
		log.Fatal(err)
	}

	// Figure 7: hash-join completion across schemes and sizes.
	hjSchemes := []core.PolicyConfig{
		{Auth: core.AuthNone},
		{Auth: core.AuthRSA, Encrypt: true},
	}
	fig7 := obs.BenchReport{
		Figure: "fig7_hashjoin", Workload: "hashjoin",
		Transport: *transportFlag, Quick: *quick, GeneratedAt: now,
	}
	for _, p := range hjSchemes {
		for _, n := range hjSizes {
			cfg := apps.DefaultHashJoinConfig(n, p, *seed+int64(n))
			if *quick {
				cfg.SizeA, cfg.SizeB, cfg.JoinValues = 300, 260, 24
			}
			cfg.Transport = *transportFlag
			metrics.EngineReset()
			before := snapshot()
			res, err := apps.RunHashJoin(cfg)
			if err != nil {
				log.Fatalf("hashjoin n=%d %s: %v", n, p.Name(), err)
			}
			if res.Violations != 0 {
				log.Fatalf("hashjoin n=%d %s: %d violations", n, p.Name(), res.Violations)
			}
			if res.ResultCount != res.ExpectedCount {
				log.Fatalf("hashjoin n=%d %s: wrong join result %d (want %d)", n, p.Name(), res.ResultCount, res.ExpectedCount)
			}
			out := obs.BenchSchemeResult{
				Scheme: p.Name(), N: n,
				FixpointSeconds: res.Duration.Seconds(),
			}
			before.delta(&out)
			res.Cluster.Stop()
			fig7.Results = append(fig7.Results, out)
			fmt.Printf("# hashjoin %s n=%d: %.3fs %d signs %d txns\n",
				p.Name(), n, out.FixpointSeconds, out.RSASignOps, out.Txns)
		}
	}
	fig7Path := filepath.Join(*outDir, "BENCH_fig7_hashjoin.json")
	if err := obs.WriteBenchJSON(fig7Path, fig7); err != nil {
		log.Fatal(err)
	}

	// Engine parallel fixpoint: the single-node stratified parallel
	// evaluator across worker counts, on the same workloads and seeds as
	// BenchmarkEngineFixpoint (Scheme = workload, N = worker count, 0 =
	// the classic sequential path). Best of three runs per cell, so the
	// checked-in numbers track the evaluator rather than scheduler noise.
	engPar := obs.BenchReport{
		Figure: "engine_parallel", Workload: "engine_fixpoint",
		Transport: "local", Quick: *quick, GeneratedAt: now,
	}
	closureProg, err := datalog.Parse(engine.BenchClosureSrc)
	if err != nil {
		log.Fatal(err)
	}
	multijoinProg, err := datalog.Parse(engine.BenchMultijoinSrc)
	if err != nil {
		log.Fatal(err)
	}
	closureFacts, closureWant := engine.BenchClosureInput(250, 1000, 7)
	engineWorkloads := []struct {
		name  string
		prog  *datalog.Program
		facts []engine.Fact
		check func(w *engine.Workspace) error
	}{
		{"closure", closureProg, closureFacts, func(w *engine.Workspace) error {
			if got := w.Count("reachable"); got != closureWant {
				return fmt.Errorf("closure size %d, want %d", got, closureWant)
			}
			return nil
		}},
		{"multijoin", multijoinProg, engine.BenchMultijoinInput(600, 400, 7), func(w *engine.Workspace) error {
			if w.Count("q") == 0 {
				return fmt.Errorf("empty join result")
			}
			return nil
		}},
	}
	for _, wl := range engineWorkloads {
		for _, workers := range []int{0, 1, 2, 4, 8} {
			best := obs.BenchSchemeResult{Scheme: wl.name, N: workers}
			for trial := 0; trial < 3; trial++ {
				w := engine.NewWorkspace(nil)
				w.Parallelism = workers
				if err := w.Install(wl.prog); err != nil {
					log.Fatalf("engine %s p=%d: %v", wl.name, workers, err)
				}
				start := time.Now()
				if _, err := w.Assert(wl.facts); err != nil {
					log.Fatalf("engine %s p=%d: %v", wl.name, workers, err)
				}
				sec := time.Since(start).Seconds()
				if err := wl.check(w); err != nil {
					log.Fatalf("engine %s p=%d: %v", wl.name, workers, err)
				}
				if s := w.Stats(); s.FullScanFallbacks != 0 {
					log.Fatalf("engine %s p=%d: join plan regression: %s", wl.name, workers, s)
				}
				if trial == 0 || sec < best.FixpointSeconds {
					best.FixpointSeconds = sec
					best.FixpointRounds = w.Stats().FixpointRounds
				}
			}
			engPar.Results = append(engPar.Results, best)
			fmt.Printf("# engine %s p=%d: %.3fs %d rounds\n",
				wl.name, workers, best.FixpointSeconds, best.FixpointRounds)
		}
	}
	engParPath := filepath.Join(*outDir, "BENCH_engine_parallel.json")
	if err := obs.WriteBenchJSON(engParPath, engPar); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# wrote %s, %s and %s\n", fig4Path, fig7Path, engParPath)
}
