// Distnet: two SecureBlox nodes exchanging facts over REAL UDP — the
// paper's deployment mode (§5.1), without the in-process simulated
// network the benchmarks use. Each internal/dist Node owns a workspace
// and a transport.UDPEndpoint; a derived export(N, L, Pkt) tuple at
// alice becomes a datagram, and bob's runtime asserts it back into his
// workspace where the import rule picks it up.
//
// There is no MemNetwork here, so no global work counter: quiescence is
// observed by polling, as a real deployment would (or by layering a
// distributed termination protocol — see ROADMAP.md).
package main

import (
	"fmt"
	"log"
	"time"

	"secureblox/internal/datalog"
	"secureblox/internal/dist"
	"secureblox/internal/engine"
	"secureblox/internal/transport"
)

const program = `
	greeting(P) -> bytes(P).
	dest(N) -> node(N).
	inbox(Pkt) -> bytes(Pkt).

	export(N, L, Pkt) <- greeting(Pkt), dest(N), principal_node[self[]]=L.
	inbox(Pkt) <- export(N, L, Pkt), principal_node[self[]]=N.
`

func newNode(name string, ep transport.Transport) *dist.Node {
	ws := engine.NewWorkspace(nil)
	prog, err := datalog.Parse(dist.ExportDecl + program)
	if err != nil {
		log.Fatal(err)
	}
	if err := ws.Install(prog); err != nil {
		log.Fatal(err)
	}
	return dist.NewNode(name, ws, ep)
}

func main() {
	epA, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	epB, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	alice := newNode("alice", epA)
	bob := newNode("bob", epB)

	// The out-of-band principal directory (§3): real addresses are only
	// known after binding, so assert them post-listen.
	for _, n := range []*dist.Node{alice, bob} {
		if _, err := n.WS.Assert([]engine.Fact{
			{Pred: "self", Tuple: datalog.Tuple{datalog.Prin(n.Principal)}},
			{Pred: "principal", Tuple: datalog.Tuple{datalog.Prin("alice")}},
			{Pred: "principal", Tuple: datalog.Tuple{datalog.Prin("bob")}},
			{Pred: "principal_node", Tuple: datalog.Tuple{datalog.Prin("alice"), datalog.NodeV(epA.Addr())}},
			{Pred: "principal_node", Tuple: datalog.Tuple{datalog.Prin("bob"), datalog.NodeV(epB.Addr())}},
		}); err != nil {
			log.Fatal(err)
		}
	}

	alice.Start()
	bob.Start()
	defer alice.Stop()
	defer bob.Stop()

	alice.Assert([]engine.Fact{
		{Pred: "greeting", Tuple: datalog.Tuple{datalog.BytesV([]byte("hello bob, over UDP"))}},
		{Pred: "dest", Tuple: datalog.Tuple{datalog.NodeV(epB.Addr())}},
	})

	deadline := time.Now().Add(5 * time.Second)
	for bob.WS.Count("inbox") == 0 {
		if time.Now().After(deadline) {
			log.Fatal("bob never received the greeting")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, t := range bob.WS.Tuples("inbox") {
		fmt.Printf("bob (%s) received: %s\n", epB.Addr(), t[0].Bytes)
	}
	fmt.Printf("alice (%s) sent %d message(s), %d bytes\n",
		epA.Addr(), epA.Stats().MsgsSent, epA.Stats().BytesSent)
}
