// Distnet: a SecureBlox cluster exchanging facts over REAL UDP — the
// paper's deployment mode (§5.1), run through the same transport-agnostic
// cluster driver the benchmarks use. The only difference from a simulated
// run is the transport.Network handed to core.NewCluster: endpoints bind
// loopback UDP ports (with the reliable ack/retransmit layer underneath),
// the principal directory carries the real bound addresses, and
// WaitFixpoint observes quiescence via the wire-level termination-detection
// protocol — no shared in-process state of any kind.
package main

import (
	"fmt"
	"log"

	"secureblox/internal/core"
	"secureblox/internal/datalog"
	"secureblox/internal/engine"
	"secureblox/internal/transport"
)

// Each node says its greeting to every other principal; the import rule
// files received greetings into the local inbox.
const program = `
	greeting(G) -> string(G).
	inbox(G) -> string(G).
	exportable('greeting).

	says['greeting](self[], U, G) <- greeting(G), principal(U), U != self[].
	inbox(G) <- says['greeting](U, self[], G).
`

func main() {
	c, err := core.NewCluster(core.ClusterConfig{
		N:      2,
		Policy: core.PolicyConfig{Auth: core.AuthHMAC, Delegation: core.DelegateNone},
		Query:  program,
		Seed:   1,
		Net:    transport.NewUDPNetwork(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	c.Start()
	c.AssertAt(0, []engine.Fact{
		{Pred: "greeting", Tuple: datalog.Tuple{datalog.String_("hello bob, over UDP")}},
	})
	c.WaitFixpoint()

	if v := c.Violations(); len(v) != 0 {
		log.Fatalf("violations: %v", v)
	}
	for _, t := range c.Query(1, "inbox") {
		fmt.Printf("node 1 (%s) received: %s\n", c.Addrs[1], t[0].Str)
	}
	tr := c.Nodes[0].Metrics.Traffic()
	fmt.Printf("node 0 (%s) shipped %d HMAC-signed message(s), %d bytes, over real UDP\n",
		c.Addrs[0], tr.MsgsSent, tr.BytesSent)
	fmt.Println("fixpoint was detected by counting-wave probes on the same sockets.")
}
