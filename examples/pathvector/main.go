// Pathvector runs the paper's §7.1 authenticated path-vector routing
// protocol on a simulated cluster under two security configurations and
// prints each node's routing table plus the security/performance tradeoff.
package main

import (
	"fmt"
	"log"

	"secureblox/internal/apps"
	"secureblox/internal/core"
	"secureblox/internal/datalog"
)

func main() {
	for _, policy := range []core.PolicyConfig{
		{Auth: core.AuthNone},
		{Auth: core.AuthRSA, Encrypt: true},
	} {
		res, err := apps.RunPathVector(apps.PathVectorConfig{
			N: 8, AvgDegree: 3, Seed: 42, Policy: policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", policy.Name())
		fmt.Printf("fixpoint latency: %v\n", res.FixpointLatency)
		fmt.Printf("per-node traffic: %.1f KB\n", res.PerNodeKB)
		fmt.Printf("mean transaction: %v\n", res.MeanTxn)
		if err := res.ValidateShortestPaths(); err != nil {
			log.Fatalf("routing tables wrong: %v", err)
		}
		fmt.Println("routing table of node 0 (dst -> hops):")
		me := datalog.NodeV(res.Cluster.Addrs[0])
		for j := 1; j < 8; j++ {
			cost, ok := res.Cluster.Nodes[0].WS.LookupFn("bestcost", me, datalog.NodeV(res.Cluster.Addrs[j]))
			if ok {
				fmt.Printf("  node %d: %d hop(s)\n", j, cost.Int)
			}
		}
		res.Cluster.Stop()
		fmt.Println()
	}
	fmt.Println("Both configurations computed identical shortest paths —")
	fmt.Println("the security policy is decoupled from the protocol.")
}
