// Delegation demonstrates authoring a custom trust policy (paper §6.1):
// per-predicate delegation where creditscore facts are accepted only from
// the credit agency "CA", enforced both by the import rule and by a
// constraint restricting who may ever be delegated that predicate.
package main

import (
	"errors"
	"fmt"
	"log"

	"secureblox/internal/engine"
	"secureblox/internal/generics"
)

const query = `
	creditscore(P, S) -> string(P), int(S).
	purchase(P) -> string(P).
	exportable('creditscore).

	// local business logic: approve purchases for good credit
	approved(P) <- purchase(P), creditscore(P, S), S > 650.

	// trust configuration: only the credit agency, and provably nobody else
	trustworthyPerPred['creditscore](#"CA").
	trustworthyPerPred['creditscore](U) -> U = #"CA".
`

// The says policy plus per-predicate delegated import — written by the
// user, not baked into the runtime.
const policy = `
	says[T]=ST, predicate(ST),
	` + "`" + `{
		ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
	}
	<-- predicate(T), exportable(T).

	` + "`" + `{
		T(V*) <- says[T](P, self[], V*), trustworthyPerPred[T](P).
	} <-- predicate(T), exportable(T).
`

func main() {
	gc := generics.NewCompiler()
	if err := gc.AddPolicy(policy); err != nil {
		log.Fatal(err)
	}
	res, err := gc.Compile(query)
	if err != nil {
		log.Fatal(err)
	}
	ws := engine.NewWorkspace(nil)
	if err := ws.Install(res.Program); err != nil {
		log.Fatal(err)
	}
	if _, err := ws.AssertProgramFacts(`
		self[]=#me. principal(#me). principal(#"CA"). principal(#rando).
		purchase("alice"). purchase("bob").
	`); err != nil {
		log.Fatal(err)
	}

	// The credit agency reports scores: imported.
	if _, err := ws.AssertProgramFacts(`
		says['creditscore](#"CA", #me, "alice", 720).
		says['creditscore](#"CA", #me, "bob", 480).
	`); err != nil {
		log.Fatal(err)
	}
	// A random principal reports a fake score: said, but never imported.
	if _, err := ws.AssertProgramFacts(`says['creditscore](#rando, #me, "bob", 800).`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("creditscore (only CA's facts imported):")
	for _, t := range ws.Tuples("creditscore") {
		fmt.Println(" ", t)
	}
	fmt.Println("approved purchases:")
	for _, t := range ws.Tuples("approved") {
		fmt.Println(" ", t)
	}

	// Attempting to widen the delegation violates the local constraint.
	_, err = ws.AssertProgramFacts(`trustworthyPerPred['creditscore](#rando).`)
	var cv *engine.ConstraintViolation
	if !errors.As(err, &cv) {
		log.Fatalf("expected a constraint violation, got %v", err)
	}
	fmt.Println("\ndelegating creditscore to anyone else is rejected:")
	fmt.Println(" ", err)
}
