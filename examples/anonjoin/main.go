// Anonjoin runs the paper's §7.3 anonymous join: an initiator joins a
// local interests table against a remote publicdata table over an onion
// circuit, so the table owner never learns who asked.
package main

import (
	"fmt"
	"log"

	"secureblox/internal/apps"
)

func main() {
	res, err := apps.RunAnonJoin(apps.AnonJoinConfig{
		Relays: 2, Interests: 10, PublicRows: 100, Overlap: 6, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Cluster.Stop()

	fmt.Printf("anonymous join over a %d-relay circuit\n", 2)
	fmt.Printf("results at initiator: %d (expected %d)\n", res.Results, res.Expected)
	fmt.Printf("time to fixpoint: %v\n", res.Duration)

	endpoint := len(res.Cluster.Nodes) - 1
	fmt.Println("\nwhat the table owner saw (circuit handle, hashed keys):")
	for _, t := range res.Cluster.Query(endpoint, "anon_says_id_in$req_publicdata") {
		fmt.Println(" ", t)
	}
	fmt.Println("\nthe owner never sees the initiator's identity or address —")
	fmt.Println("requests are attributed only to the circuit.")
}
