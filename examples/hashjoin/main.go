// Hashjoin runs the paper's §7.2 secure parallel hash join with and
// without authentication/encryption and prints result counts, bandwidth,
// and the initiator's completion profile.
package main

import (
	"fmt"
	"log"

	"secureblox/internal/apps"
	"secureblox/internal/core"
)

func main() {
	for _, policy := range []core.PolicyConfig{
		{Auth: core.AuthNone},
		{Auth: core.AuthRSA, Encrypt: true},
	} {
		cfg := apps.DefaultHashJoinConfig(6, policy, 7)
		// scale the paper's 900x800 workload down for a quick demo
		cfg.SizeA, cfg.SizeB, cfg.JoinValues = 300, 260, 24
		res, err := apps.RunHashJoin(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", policy.Name())
		fmt.Printf("join result: %d tuples (expected %d)\n", res.ResultCount, res.ExpectedCount)
		fmt.Printf("total time:  %v\n", res.Duration)
		fmt.Printf("per-node traffic: %.1f KB\n", res.PerNodeKB)
		fmt.Printf("initiator transactions: %d (median completion %v)\n",
			res.InitiatorCDF.Len(), res.InitiatorCDF.Quantile(0.5))
		if res.ResultCount != res.ExpectedCount {
			log.Fatal("join result wrong")
		}
		res.Cluster.Stop()
		fmt.Println()
	}
}
