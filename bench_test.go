// Package secureblox's root benchmark harness regenerates every figure of
// the paper's evaluation (§8). Each BenchmarkFigN target runs the
// corresponding experiment and reports the same quantity the figure plots
// (fixpoint seconds, per-node KB, transaction ms, CDF quantiles). Absolute
// numbers differ from the paper's 2010 cluster — the shape (scheme
// ordering, growth with N, crossovers) is what EXPERIMENTS.md records.
//
// Default sizes are scaled down so `go test -bench=.` completes quickly;
// set SBX_BENCH_FULL=1 for the paper's full size sweep, or use
// cmd/pathvector and cmd/hashjoin for standalone runs with flags.
package secureblox

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"secureblox/internal/apps"
	"secureblox/internal/core"
	"secureblox/internal/datalog"
	"secureblox/internal/engine"
	"secureblox/internal/metrics"
	"secureblox/internal/seccrypto"
	"secureblox/internal/udf"
	"secureblox/internal/wire"
)

func benchSizes(full []int, quick []int) []int {
	if os.Getenv("SBX_BENCH_FULL") != "" {
		return full
	}
	return quick
}

var (
	pvSizes = benchSizes(
		[]int{6, 12, 18, 24, 30, 36, 42, 48, 54, 60, 66, 72},
		[]int{6, 12, 18, 24})
	hjSizes = benchSizes(
		[]int{6, 12, 18, 24, 30, 36, 42, 48},
		[]int{6, 12, 18})
)

func runPV(b *testing.B, n int, p core.PolicyConfig) *apps.PathVectorResult {
	b.Helper()
	res, err := apps.RunPathVector(apps.PathVectorConfig{
		N: n, AvgDegree: 3, Policy: p, Seed: int64(n) * 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Violations != 0 {
		b.Fatalf("violations: %d", res.Violations)
	}
	res.Cluster.Stop()
	return res
}

func benchPathVector(b *testing.B, policies []core.PolicyConfig, report func(*testing.B, *apps.PathVectorResult)) {
	for _, p := range policies {
		for _, n := range pvSizes {
			b.Run(fmt.Sprintf("%s/n=%d", p.Name(), n), func(b *testing.B) {
				// The evaluator counters are process-wide; reset so this
				// (scheme, size) cell reports only its own rounds and any
				// join-plan regression is attributed to the run that caused it.
				metrics.EngineReset()
				for i := 0; i < b.N; i++ {
					report(b, runPV(b, n, p))
				}
				s := metrics.EngineTotals()
				if s.FullScanFallbacks != 0 {
					b.Fatalf("join plan regression: %s", s)
				}
				b.ReportMetric(float64(s.FixpointRounds)/float64(b.N), "rounds")
			})
		}
	}
}

// BenchmarkFig4FixpointLatencyNoEnc regenerates Figure 4: fixpoint latency
// for NoAuth, HMAC and RSA without encryption — plus footnote 2's
// batch-signed RSA, which amortizes one signature per export batch.
func BenchmarkFig4FixpointLatencyNoEnc(b *testing.B) {
	benchPathVector(b, []core.PolicyConfig{
		{Auth: core.AuthNone}, {Auth: core.AuthHMAC}, {Auth: core.AuthRSA},
		{Auth: core.AuthRSA, BatchSign: true},
	}, func(b *testing.B, r *apps.PathVectorResult) {
		b.ReportMetric(r.FixpointLatency.Seconds(), "fixpoint-s")
	})
}

// BenchmarkSignOpsPerFixpoint isolates footnote 2's claim on the memnet
// path-vector workload: batch signing plus the memoizing sign pool cuts
// RSA private-key operations per fixpoint from one per distinct said fact
// to one per shipped envelope. The rsa-signs metric is the process-wide
// RSASign delta over the run.
func BenchmarkSignOpsPerFixpoint(b *testing.B) {
	n := pvSizes[len(pvSizes)-1]
	for _, p := range []core.PolicyConfig{
		{Auth: core.AuthRSA}, {Auth: core.AuthRSA, BatchSign: true},
	} {
		b.Run(fmt.Sprintf("%s/n=%d", p.Name(), n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				before := seccrypto.SignOps()
				r := runPV(b, n, p)
				b.ReportMetric(float64(seccrypto.SignOps()-before), "rsa-signs")
				b.ReportMetric(r.FixpointLatency.Seconds(), "fixpoint-s")
			}
		})
	}
}

// BenchmarkFig5FixpointLatencyEnc regenerates Figure 5: fixpoint latency
// with AES encryption added.
func BenchmarkFig5FixpointLatencyEnc(b *testing.B) {
	benchPathVector(b, []core.PolicyConfig{
		{Auth: core.AuthNone},
		{Auth: core.AuthNone, Encrypt: true},
		{Auth: core.AuthHMAC, Encrypt: true},
		{Auth: core.AuthRSA, Encrypt: true},
	}, func(b *testing.B, r *apps.PathVectorResult) {
		b.ReportMetric(r.FixpointLatency.Seconds(), "fixpoint-s")
	})
}

// BenchmarkFig6CommOverhead regenerates Figure 6: per-node communication
// overhead (KB) for the unencrypted schemes.
func BenchmarkFig6CommOverhead(b *testing.B) {
	benchPathVector(b, []core.PolicyConfig{
		{Auth: core.AuthNone}, {Auth: core.AuthHMAC}, {Auth: core.AuthRSA},
	}, func(b *testing.B, r *apps.PathVectorResult) {
		b.ReportMetric(r.PerNodeKB, "KB/node")
	})
}

// BenchmarkFig7TxnDuration regenerates Figure 7: average local transaction
// duration for NoAuth, HMAC and RSA-AES.
func BenchmarkFig7TxnDuration(b *testing.B) {
	benchPathVector(b, []core.PolicyConfig{
		{Auth: core.AuthNone}, {Auth: core.AuthHMAC}, {Auth: core.AuthRSA, Encrypt: true},
	}, func(b *testing.B, r *apps.PathVectorResult) {
		b.ReportMetric(float64(r.MeanTxn.Microseconds())/1000, "txn-ms")
	})
}

func benchConvergenceCDF(b *testing.B, n int) {
	for _, p := range []core.PolicyConfig{
		{Auth: core.AuthNone}, {Auth: core.AuthHMAC}, {Auth: core.AuthRSA, Encrypt: true},
	} {
		b.Run(fmt.Sprintf("%s/n=%d", p.Name(), n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runPV(b, n, p)
				cdf := &metrics.CDF{}
				for _, d := range r.Convergence {
					cdf.Add(d)
				}
				b.ReportMetric(float64(cdf.Quantile(0.5).Microseconds())/1000, "p50-ms")
				b.ReportMetric(float64(cdf.Quantile(1.0).Microseconds())/1000, "p100-ms")
			}
		})
	}
}

// BenchmarkFig8ConvergenceCDF36 regenerates Figure 8: cumulative fraction
// of converged nodes on one 36-node random graph (scaled to the quick size
// unless SBX_BENCH_FULL is set).
func BenchmarkFig8ConvergenceCDF36(b *testing.B) {
	n := 36
	if os.Getenv("SBX_BENCH_FULL") == "" {
		n = 18
	}
	benchConvergenceCDF(b, n)
}

// BenchmarkFig9ConvergenceCDF72 regenerates Figure 9: the 72-node graph.
func BenchmarkFig9ConvergenceCDF72(b *testing.B) {
	n := 72
	if os.Getenv("SBX_BENCH_FULL") == "" {
		n = 24
	}
	benchConvergenceCDF(b, n)
}

func runHJ(b *testing.B, n int, p core.PolicyConfig) *apps.HashJoinResult {
	b.Helper()
	cfg := apps.DefaultHashJoinConfig(n, p, int64(n)*17)
	if os.Getenv("SBX_BENCH_FULL") == "" {
		cfg.SizeA, cfg.SizeB, cfg.JoinValues = 300, 260, 24
	}
	res, err := apps.RunHashJoin(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Violations != 0 || res.ResultCount != res.ExpectedCount {
		b.Fatalf("bad run: %d violations, %d/%d results",
			res.Violations, res.ResultCount, res.ExpectedCount)
	}
	res.Cluster.Stop()
	return res
}

func benchHashJoinCDF(b *testing.B, n int) {
	for _, p := range []core.PolicyConfig{{Auth: core.AuthNone}, {Auth: core.AuthRSA, Encrypt: true}} {
		b.Run(fmt.Sprintf("%s/n=%d", p.Name(), n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runHJ(b, n, p)
				b.ReportMetric(float64(r.InitiatorCDF.Quantile(0.5).Microseconds())/1000, "p50-ms")
				b.ReportMetric(float64(r.InitiatorCDF.Quantile(1.0).Microseconds())/1000, "p100-ms")
			}
		})
	}
}

// BenchmarkFig10HashJoinCDF6 regenerates Figure 10: transaction completion
// CDF at the initiator for the 6-node hash join, NoAuth vs RSA-AES.
func BenchmarkFig10HashJoinCDF6(b *testing.B) { benchHashJoinCDF(b, 6) }

// BenchmarkFig11HashJoinCDF18 regenerates Figure 11: the 18-node variant,
// where smaller batches amortize crypto less and the gap widens.
func BenchmarkFig11HashJoinCDF18(b *testing.B) { benchHashJoinCDF(b, 18) }

// BenchmarkFig12HashJoinOverhead regenerates Figure 12: per-node
// communication overhead of the hash join across experiment sizes.
func BenchmarkFig12HashJoinOverhead(b *testing.B) {
	for _, p := range []core.PolicyConfig{{Auth: core.AuthNone}, {Auth: core.AuthRSA, Encrypt: true}} {
		for _, n := range hjSizes {
			b.Run(fmt.Sprintf("%s/n=%d", p.Name(), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := runHJ(b, n, p)
					b.ReportMetric(r.PerNodeKB, "KB/node")
				}
			})
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkEngineTransitiveClosure measures the raw engine: semi-naïve
// fixpoint of a 200-node chain closure (20100 derived tuples).
func BenchmarkEngineTransitiveClosure(b *testing.B) {
	prog, err := datalog.Parse(`
		reachable(X,Y) <- link(X,Y).
		reachable(X,Y) <- link(X,Z), reachable(Z,Y).
	`)
	if err != nil {
		b.Fatal(err)
	}
	var facts []engine.Fact
	for i := 0; i < 200; i++ {
		facts = append(facts, engine.Fact{Pred: "link",
			Tuple: datalog.Tuple{datalog.Int64(int64(i)), datalog.Int64(int64(i + 1))}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := engine.NewWorkspace(nil)
		if err := w.Install(prog); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Assert(facts); err != nil {
			b.Fatal(err)
		}
		if w.Count("reachable") != 20100 {
			b.Fatal("wrong closure size")
		}
	}
}

// closureAllocCeiling bounds allocations per sequential closure iteration.
// The evaluator reuses its evalEnv, delta projection indexes and per-rule
// frames across fixpoint rounds, so allocs/op is dominated by tuple
// storage for the ~60k derived reachable facts (measured: ~131k allocs/op).
// The ceiling has ~50% headroom and catches a reintroduced per-round or
// per-delta-tuple allocation, which multiplies that figure.
const closureAllocCeiling = 200_000

// benchFixpointWorkers are the engine parallelism settings each fixpoint
// workload is measured at: p0 is the classic sequential path, p1 the
// parallel machinery without concurrency (its overhead), p2..p8 the scaling
// curve. cmd/benchjson records the same sweep as BENCH_engine_parallel.json.
var benchFixpointWorkers = []int{0, 1, 2, 4, 8}

// BenchmarkEngineFixpoint measures the local evaluator's join machinery in
// isolation — the per-transaction cost under every security policy. The
// closure case exercises recursive semi-naïve evaluation over a dense
// random digraph (delta probing, hash-partitioned parallel rounds); the
// multijoin case exercises a three-way join whose middle atom binds a
// non-first column, the shape that historically forced a full relation scan.
func BenchmarkEngineFixpoint(b *testing.B) {
	b.Run("closure", func(b *testing.B) {
		prog, err := datalog.Parse(engine.BenchClosureSrc)
		if err != nil {
			b.Fatal(err)
		}
		facts, want := engine.BenchClosureInput(250, 1000, 7)
		for _, workers := range benchFixpointWorkers {
			b.Run(fmt.Sprintf("p%d", workers), func(b *testing.B) {
				b.ReportAllocs()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w := engine.NewWorkspace(nil)
					w.Parallelism = workers
					if err := w.Install(prog); err != nil {
						b.Fatal(err)
					}
					if _, err := w.Assert(facts); err != nil {
						b.Fatal(err)
					}
					if got := w.Count("reachable"); got != want {
						b.Fatalf("closure size %d, want %d", got, want)
					}
					if s := w.Stats(); s.FullScanFallbacks != 0 {
						b.Fatalf("join plan regression: %s", s)
					}
				}
				b.StopTimer()
				runtime.ReadMemStats(&after)
				if workers == 0 {
					perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
					if perOp > closureAllocCeiling {
						b.Fatalf("allocation regression: %.0f allocs/op (ceiling %d)",
							perOp, closureAllocCeiling)
					}
				}
			})
		}
	})
	b.Run("multijoin", func(b *testing.B) {
		prog, err := datalog.Parse(engine.BenchMultijoinSrc)
		if err != nil {
			b.Fatal(err)
		}
		facts := engine.BenchMultijoinInput(600, 400, 7)
		for _, workers := range benchFixpointWorkers {
			b.Run(fmt.Sprintf("p%d", workers), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w := engine.NewWorkspace(nil)
					w.Parallelism = workers
					if err := w.Install(prog); err != nil {
						b.Fatal(err)
					}
					if _, err := w.Assert(facts); err != nil {
						b.Fatal(err)
					}
					if w.Count("q") == 0 {
						b.Fatal("empty join result")
					}
					if s := w.Stats(); s.FullScanFallbacks != 0 {
						b.Fatalf("join plan regression: %s", s)
					}
				}
			})
		}
	})
}

// BenchmarkRSASignVerify measures the paper's RSA-1024/SHA-1 operations —
// the dominant cost behind Figures 4 and 7.
func BenchmarkRSASignVerify(b *testing.B) {
	key, err := seccrypto.GenerateRSAKey(seccrypto.NewDeterministicRand(1))
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64)
	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := seccrypto.RSASign(key, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	sig, _ := seccrypto.RSASign(key, data)
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !seccrypto.RSAVerify(&key.PublicKey, data, sig) {
				b.Fatal("verify failed")
			}
		}
	})
}

// BenchmarkHMACAndAES measures the cheap schemes for comparison.
func BenchmarkHMACAndAES(b *testing.B) {
	secret, _ := seccrypto.GenerateSecret(seccrypto.NewDeterministicRand(2))
	data := make([]byte, 64)
	b.Run("hmac-sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seccrypto.HMACSign(secret, data)
		}
	})
	b.Run("aes-encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := seccrypto.AESEncryptDetIV(secret, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireCodec measures payload encode/decode, the per-tuple
// serialization cost of §5.1.
func BenchmarkWireCodec(b *testing.B) {
	p := wire.Payload{
		Pred: "path",
		Sig:  make([]byte, 128),
		Vals: datalog.Tuple{
			datalog.Entity("pathvar", 12345),
			datalog.NodeV("10.0.0.1:7000"), datalog.NodeV("10.0.0.2:7000"),
			datalog.Int64(3),
		},
	}
	enc := wire.EncodePayload(p)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wire.EncodePayload(p)
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodePayload(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAnonCircuit measures the full anonymous join (§7.3) end to end.
func BenchmarkAnonCircuit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := apps.RunAnonJoin(apps.AnonJoinConfig{
			Relays: 2, Interests: 10, PublicRows: 100, Overlap: 6, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Results != res.Expected {
			b.Fatal("wrong result")
		}
		b.ReportMetric(res.Duration.Seconds(), "fixpoint-s")
		res.Cluster.Stop()
	}
}

// BenchmarkAblationSigningBatchSize isolates the design choice behind
// Figures 10/11: the same number of said tuples processed as one large
// batch vs many single-tuple batches. Per-batch fixed costs (transaction
// setup, constraint sweep) amortize in the large batch; per-tuple RSA
// signatures do not — which is why the paper's footnote 2 recommends
// signing batch aggregates, and why parallelism (smaller batches) hurts
// RSA-AES disproportionately.
func BenchmarkAblationSigningBatchSize(b *testing.B) {
	const tuples = 64
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("RSA/batch=%d", batch), func(b *testing.B) {
			ts, err := seccrypto.NewTrustSetup([]string{"a", "bpeer"}, seccrypto.NewDeterministicRand(1))
			if err != nil {
				b.Fatal(err)
			}
			ks := ts.Stores["a"]
			prog, err := datalog.Parse(`
				sig(V1, S) <- outgoing(V1), private_key[]=K, rsa_sign['m](K, V1, S).
				packed(T) <- outgoing(V1), sig(V1, S), serialize['m](S, T, V1).
			`)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reg := engine.NewUDFRegistry()
				if err := udf.Register(reg, ks, seccrypto.NewDeterministicRand(2)); err != nil {
					b.Fatal(err)
				}
				w := engine.NewWorkspace(reg)
				if err := w.Install(prog); err != nil {
					b.Fatal(err)
				}
				if _, err := w.Assert([]engine.Fact{{Pred: "private_key",
					Tuple: datalog.Tuple{datalog.BytesV(ks.PrivateKeyDER())}}}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for start := 0; start < tuples; start += batch {
					var facts []engine.Fact
					for j := start; j < start+batch && j < tuples; j++ {
						facts = append(facts, engine.Fact{Pred: "outgoing",
							Tuple: datalog.Tuple{datalog.Int64(int64(j))}})
					}
					if _, err := w.Assert(facts); err != nil {
						b.Fatal(err)
					}
				}
				if w.Count("packed") != tuples {
					b.Fatal("wrong pipeline output")
				}
			}
		})
	}
}
