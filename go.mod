module secureblox

go 1.24
